// Command trace runs one timing simulation with per-request critical-path
// tracing enabled (internal/obs) and writes a Chrome/Perfetto trace_event
// file, a provenance sidecar, and a latency-attribution report with the
// top-N slowest requests.
//
// Usage:
//
//	trace -system emcc -bench canneal -refs 200000 -out trace.json
//	trace -system morphable -bench mcf -refs 200000 -sample 16 -out m.json
//	trace -flight flight.csv -flight-period-ns 10000   # interval time series
//	trace -openmetrics metrics.prom                    # final-snapshot exposition
//
// Open the output at https://ui.perfetto.dev (or chrome://tracing): each
// core is a process, each in-flight request a thread pair — the data lane
// and the crypto lane — so EMCC's decrypt overlap is visible as parallel
// bars. <out>.prov.json records what produced the file.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/config"
	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/prov"
	"repro/internal/run"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/workload"
)

func main() {
	var (
		system   = flag.String("system", "emcc", "non-secure | sc64 | morphable | emcc | mono | bipbip | insram | <any>+nollc")
		bench    = flag.String("bench", "canneal", "synthetic benchmark")
		refs     = flag.Int64("refs", 200_000, "memory references to replay")
		warm     = flag.Int64("warmup", 0, "warmup references before measuring")
		seed     = flag.Uint64("seed", 1, "workload seed")
		cores    = flag.Int("cores", 0, "simulated cores (0 = config default)")
		small    = flag.Bool("small", false, "use the miniature test scale")
		out      = flag.String("out", "trace.json", "Chrome trace output path")
		topN     = flag.Int("top", 10, "slowest requests to report")
		sample   = flag.Uint64("sample", 1, "trace every Nth request (1 = all)")
		periodNS = flag.Float64("sample-period-ns", 1000, "time-series sampling period in ns (0 = off)")

		flight         = flag.String("flight", "", "flight-recorder output path (.json = JSON, else CSV; empty = off)")
		flightPeriodNS = flag.Float64("flight-period-ns", 10_000, "flight-recorder interval in ns")
		flightCap      = flag.Int("flight-cap", 1<<16, "flight-recorder ring capacity (oldest intervals drop)")
		openmetrics    = flag.String("openmetrics", "", "OpenMetrics text-exposition output path (empty = off)")
	)
	flag.Parse()

	cfg := config.Default()
	if err := config.ApplySystem(&cfg, *system); err != nil {
		fatal(err)
	}
	// Declare the instrumentation this command attaches, so an
	// incompatible engine selection (Domains > 0) fails config
	// validation in New instead of erroring at attach time.
	cfg.Tracing = true
	cfg.FlightRecorder = *flight != ""
	scale := workload.DefaultScale()
	if *small {
		scale = workload.TestScale()
	}

	// The scenario is the canonical run description; its key names the
	// simulation this trace came from, so a trace can be matched to the
	// figure/report runs (and cache entries) built from the same scenario.
	sc := run.Scenario{
		Mode: run.Timing, Benchmark: *bench, Config: cfg,
		Seed: *seed, Refs: *refs, Warmup: *warm, Cores: *cores, Scale: scale,
		Label: *bench,
	}
	manifest := prov.Manifest(&cfg, map[string]string{
		"tool":      "trace",
		"benchmark": *bench,
		"seed":      fmt.Sprint(*seed),
		"refs":      fmt.Sprint(*refs),
		"warmup":    fmt.Sprint(*warm),
		"sample":    fmt.Sprint(*sample),
		"scenario":  sc.Key(),
		"out":       *out,
	})

	s, err := sc.NewTiming()
	if err != nil {
		fatal(err)
	}
	s.Stats().SetProvenance(manifest)

	f, err := os.Create(*out)
	if err != nil {
		fatal(err)
	}
	// The Chrome file's otherData block carries the masked manifest so the
	// trace stream stays byte-deterministic for a fixed seed; the full
	// manifest (wall time, toolchain, revision) goes to the sidecar.
	tr := obs.New(obs.Options{
		Stats:        s.Stats(),
		Writer:       f,
		Sample:       *sample,
		TopN:         *topN,
		SamplePeriod: sim.NS(*periodNS),
		Meta:         prov.Masked(manifest),
	})
	if err := s.SetTracer(tr); err != nil {
		fatal(err)
	}
	var rec *metrics.Recorder
	if *flight != "" {
		rec = metrics.NewRecorder(s.Stats(), *flightCap)
		if err := s.SetFlightRecorder(rec, sim.NS(*flightPeriodNS)); err != nil {
			fatal(err)
		}
	}
	res := s.Run()
	if err := tr.Close(); err != nil {
		fatal(err)
	}
	if err := f.Close(); err != nil {
		fatal(err)
	}
	sidecar, err := prov.JSON(manifest)
	if err != nil {
		fatal(err)
	}
	if err := os.WriteFile(*out+".prov.json", sidecar, 0o644); err != nil {
		fatal(err)
	}
	if rec != nil {
		if err := writeFlight(*flight, rec); err != nil {
			fatal(err)
		}
	}
	if *openmetrics != "" {
		if err := writeOpenMetrics(*openmetrics, s.Stats()); err != nil {
			fatal(err)
		}
	}

	fmt.Printf("# trace %s on %s, %d refs → %s\n", cfg.SystemName(), *bench, *refs, *out)
	fmt.Printf("# %s\n", prov.Line(manifest))
	fmt.Printf("simulated-time-ms            %.3f\n", float64(res.SimulatedTime.Nanoseconds())/1e6)
	fmt.Printf("ipc                          %.3f\n", res.IPC)
	fmt.Println()
	obs.WriteSummary(os.Stdout, s.Stats())
	obs.WriteTopRequests(os.Stdout, tr.TopRequests())
}

// writeFlight dumps the recorder's interval series: JSON when the path
// says so, CSV otherwise.
func writeFlight(path string, rec *metrics.Recorder) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if strings.HasSuffix(path, ".json") {
		err = rec.WriteJSON(f)
	} else {
		err = rec.WriteCSV(f)
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}

// writeOpenMetrics dumps the final stats snapshot — counters, accumulators
// and latency histograms — in OpenMetrics text exposition.
func writeOpenMetrics(path string, st *stats.Set) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	err = st.Snapshot().WriteOpenMetrics(f)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "trace:", err)
	os.Exit(1)
}
