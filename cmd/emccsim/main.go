// Command emccsim runs one simulation configuration and prints its
// statistics. It is the low-level tool; cmd/figures regenerates the paper's
// figures from batches of these runs.
//
// Usage:
//
//	emccsim -mode functional -bench canneal -refs 2000000 -system emcc
//	emccsim -mode timing -bench mcf -refs 300000 -system morphable
//	emccsim -mode timing -bench mcf -cache .simcache   # reuse prior results
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/config"
	"repro/internal/prov"
	"repro/internal/run"
	"repro/internal/sim"
	"repro/internal/workload"
)

func main() {
	var (
		mode     = flag.String("mode", "functional", "functional (Pintool-style counting) or timing (gem5-style)")
		bench    = flag.String("bench", "canneal", "benchmark name; -list to enumerate")
		list     = flag.Bool("list", false, "list benchmarks and exit")
		system   = flag.String("system", "morphable", "non-secure | sc64 | morphable | emcc | mono | bipbip | insram | <any>+nollc")
		refs     = flag.Int64("refs", 2_000_000, "memory references to replay")
		warm     = flag.Int64("warmup", 0, "functional warmup references before measuring")
		seed     = flag.Uint64("seed", 1, "workload seed")
		small    = flag.Bool("small", false, "use the miniature test scale")
		llcMB    = flag.Int64("llc-mb", 0, "override LLC size in MiB (0 = Table I)")
		ctrKB    = flag.Int64("ctr-kb", 0, "override MC counter cache KiB (0 = Table I)")
		aesNS    = flag.Float64("aes-ns", 0, "override AES latency in ns (0 = Table I)")
		chans    = flag.Int("channels", 0, "override DRAM channel count (0 = Table I)")
		aesFrac  = flag.Float64("aes-frac", -1, "override fraction of AES units moved to L2 (EMCC)")
		l2ctrKB  = flag.Int64("l2ctr-kb", 0, "override EMCC L2 counter cap KiB (0 = default 32)")
		domains  = flag.Int("domains", 0, "shard the timing engine into N slice-group event domains (0 = serial; results identical)")
		shCores  = flag.Bool("shard-cores", false, "with -domains: one event domain per core+L2 tile")
		xpt      = flag.Bool("xpt", false, "enable XPT LLC-miss prediction")
		pfDeg    = flag.Int("prefetch", 0, "L2 stride-prefetch degree (0 = off)")
		dynOff   = flag.Bool("dynamic-off", false, "enable the Sec. IV-F intensity monitor (EMCC)")
		asJSON   = flag.Bool("json", false, "emit results as JSON")
		cacheDir = flag.String("cache", "", "directory for the persistent result cache")
	)
	flag.Parse()

	if *list {
		fmt.Println("primary (large/irregular):", strings.Join(workload.PrimaryNames(), " "))
		fmt.Println("regular (Fig 24):", strings.Join(workload.RegularNames(), " "))
		return
	}

	cfg := config.Default()
	if err := config.ApplySystem(&cfg, *system); err != nil {
		fatal(err)
	}
	if *llcMB > 0 {
		cfg.L3Bytes = *llcMB << 20
	}
	if *ctrKB > 0 {
		cfg.CtrCacheBytes = *ctrKB << 10
	}
	if *aesNS > 0 {
		cfg.AESLatency = sim.NS(*aesNS)
	}
	if *chans > 0 {
		cfg.Channels = *chans
	}
	if *aesFrac >= 0 {
		cfg.EMCCAESFraction = *aesFrac
	}
	if *l2ctrKB > 0 {
		cfg.EMCCL2CounterBytes = *l2ctrKB << 10
	}
	cfg.Domains = *domains
	cfg.ShardCores = *shCores
	cfg.XPT = *xpt
	cfg.PrefetchL2Degree = *pfDeg
	cfg.EMCCDynamicOff = *dynOff

	scale := workload.DefaultScale()
	if *small {
		scale = workload.TestScale()
	}

	var runMode run.Mode
	switch *mode {
	case "functional":
		runMode = run.Functional
	case "timing":
		runMode = run.Timing
	default:
		fatal(fmt.Errorf("unknown -mode %q", *mode))
	}

	sc := run.Scenario{
		Mode: runMode, Benchmark: *bench, Config: cfg,
		Seed: *seed, Refs: *refs, Warmup: *warm, Scale: scale,
		Label: *bench,
	}

	var cache *run.Cache
	if *cacheDir != "" {
		c, err := run.OpenCache(*cacheDir)
		if err != nil {
			fatal(err)
		}
		cache = c
	}
	o, executed, err := run.Resolve(&sc, cache)
	if err != nil {
		fatal(err)
	}

	// The manifest describes this invocation, not the (possibly cached)
	// execution, so it overwrites whatever provenance rode along in the
	// cache entry.
	manifest := prov.Manifest(&cfg, map[string]string{
		"tool":      "emccsim",
		"mode":      *mode,
		"benchmark": *bench,
		"seed":      fmt.Sprint(*seed),
		"refs":      fmt.Sprint(*refs),
		"warmup":    fmt.Sprint(*warm),
		"scenario":  sc.Key(),
		"cached":    fmt.Sprint(!executed),
	})
	o.Stats.Provenance = manifest

	switch runMode {
	case run.Functional:
		if *asJSON {
			emitJSON(map[string]interface{}{
				"mode": "functional", "system": cfg.SystemName(), "benchmark": *bench,
				"refs": *refs, "stats": o.Stats,
			})
			return
		}
		fmt.Printf("# functional %s on %s, %d refs\n", cfg.SystemName(), *bench, *refs)
		fmt.Printf("# %s\n", prov.Line(manifest))
		fmt.Print(o.Stats.Dump())
	case run.Timing:
		res := o.Timing
		if *asJSON {
			util := map[string]float64{}
			for k, v := range res.BusyFraction {
				util[k.String()] = v
			}
			emitJSON(map[string]interface{}{
				"mode": "timing", "system": cfg.SystemName(), "benchmark": *bench,
				"refs": *refs, "simulated_ms": res.SimulatedTime.Nanoseconds() / 1e6,
				"instructions": res.Instructions, "ipc": res.IPC,
				"l2_miss_latency_ns": res.L2MissLatencyNS,
				"decrypt_at_l2_frac": res.DecryptAtL2Frac,
				"dram_util":          util,
				"stats":              o.Stats,
			})
			return
		}
		fmt.Printf("# timing %s on %s, %d refs\n", cfg.SystemName(), *bench, *refs)
		fmt.Printf("# %s\n", prov.Line(manifest))
		fmt.Printf("simulated-time-ms            %.3f\n", res.SimulatedTime.Nanoseconds()/1e6)
		fmt.Printf("instructions                 %d\n", res.Instructions)
		fmt.Printf("ipc                          %.3f\n", res.IPC)
		fmt.Printf("l2-miss-latency-ns           %.2f\n", res.L2MissLatencyNS)
		fmt.Printf("decrypt-at-l2-frac           %.3f\n", res.DecryptAtL2Frac)
		for k, v := range res.BusyFraction {
			fmt.Printf("dram-util/%-18s %.3f\n", k, v)
		}
		fmt.Print(o.Stats.Dump())
	}
}

func emitJSON(v interface{}) {
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "emccsim:", err)
	os.Exit(1)
}
