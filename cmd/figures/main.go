// Command figures regenerates the paper's tables and figures. Each figure
// prints the same rows/series the paper plots, with the paper's reported
// numbers quoted in the trailing notes for comparison.
//
// Usage:
//
//	figures -fig fig16            # one figure
//	figures -all                  # everything (takes a while)
//	figures -all -quick           # smoke-test sizes
//	figures -all -j 8             # run scenarios on 8 workers
//	figures -all -cache .figcache # reuse simulation results across runs
//	figures -list                 # enumerate figure ids
//
// Tables are byte-identical at any -j; -cache keys entries by scenario
// config hash and code revision, so stale results are never served.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/figures"
	"repro/internal/run"
)

func main() {
	var (
		fig      = flag.String("fig", "", "figure id to regenerate (see -list)")
		all      = flag.Bool("all", false, "regenerate every figure")
		quick    = flag.Bool("quick", false, "shrink run lengths (noisier shapes)")
		list     = flag.Bool("list", false, "list figure ids and exit")
		quiet    = flag.Bool("quiet", false, "suppress progress logging")
		asCSV    = flag.Bool("csv", false, "emit CSV instead of aligned text")
		chart    = flag.Bool("chart", false, "render percentage columns as ASCII bars")
		workers  = flag.Int("j", 0, "parallel simulation workers (0 = GOMAXPROCS, 1 = serial)")
		cacheDir = flag.String("cache", "", "directory for the persistent result cache")
	)
	flag.Parse()

	if *list {
		fmt.Println(strings.Join(figures.IDs(), " "))
		return
	}
	h := figures.NewHarness(*quick)
	h.Workers = *workers
	if *cacheDir != "" {
		c, err := run.OpenCache(*cacheDir)
		if err != nil {
			fmt.Fprintf(os.Stderr, "figures: cache: %v\n", err)
			os.Exit(1)
		}
		h.Cache = c
	}
	if !*quiet {
		h.Log = os.Stderr
	}
	emit := func(t *figures.Table) {
		if *chart {
			t.FprintChart(os.Stdout)
			return
		}
		if *asCSV {
			fmt.Printf("# %s: %s\n", t.ID, t.Title)
			if err := t.WriteCSV(os.Stdout); err != nil {
				fmt.Fprintf(os.Stderr, "figures: csv: %v\n", err)
				os.Exit(1)
			}
			fmt.Println()
			return
		}
		t.Fprint(os.Stdout)
	}
	switch {
	case *all:
		for _, t := range h.All() {
			emit(t)
		}
	case *fig != "":
		t, ok := h.ByID(*fig)
		if !ok {
			fmt.Fprintf(os.Stderr, "figures: unknown figure %q; try -list\n", *fig)
			os.Exit(1)
		}
		emit(t)
	default:
		fmt.Fprintln(os.Stderr, "figures: pass -fig <id> or -all (see -list)")
		os.Exit(1)
	}
}
