// Command tracer records synthetic benchmark traces to disk and replays
// them through the simulators — the workflow for pinning an experiment's
// exact input or sharing a workload without sharing generator code.
//
// Usage:
//
//	tracer record -bench canneal -refs 2000000 -out canneal.trc
//	tracer info   -in canneal.trc
//	tracer replay -in canneal.trc -mode functional -system emcc
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/config"
	"repro/internal/fsim"
	"repro/internal/trace"
	"repro/internal/tsim"
	"repro/internal/workload"
)

func main() {
	if len(os.Args) < 2 {
		fatalf("usage: tracer record|info|replay|compose [flags]")
	}
	switch os.Args[1] {
	case "record":
		record(os.Args[2:])
	case "info":
		info(os.Args[2:])
	case "replay":
		replay(os.Args[2:])
	case "compose":
		compose(os.Args[2:])
	default:
		fatalf("unknown subcommand %q", os.Args[1])
	}
}

func record(args []string) {
	fs := flag.NewFlagSet("record", flag.ExitOnError)
	bench := fs.String("bench", "canneal", "benchmark to record")
	refs := fs.Int64("refs", 1_000_000, "references to record")
	cores := fs.Int("cores", 4, "interleaved core streams")
	seed := fs.Uint64("seed", 1, "workload seed")
	out := fs.String("out", "", "output file (required)")
	small := fs.Bool("small", false, "use the miniature test scale")
	fs.Parse(args)
	if *out == "" {
		fatalf("record: -out is required")
	}
	sc := workload.DefaultScale()
	if *small {
		sc = workload.TestScale()
	}
	f, err := os.Create(*out)
	if err != nil {
		fatalf("record: %v", err)
	}
	defer f.Close()
	n, err := trace.Record(f, *bench, *cores, *seed, *refs, sc)
	if err != nil {
		fatalf("record: %v", err)
	}
	st, _ := f.Stat()
	fmt.Printf("recorded %d refs of %s into %s (%.1f MB, %.2f B/ref)\n",
		n, *bench, *out, float64(st.Size())/1e6, float64(st.Size())/float64(n))
}

// compose summarises a synthetic benchmark's stream without a simulator.
func compose(args []string) {
	fs := flag.NewFlagSet("compose", flag.ExitOnError)
	bench := fs.String("bench", "canneal", "benchmark to summarise")
	refs := fs.Int64("refs", 200_000, "references to sample")
	seed := fs.Uint64("seed", 1, "workload seed")
	small := fs.Bool("small", false, "use the miniature test scale")
	fs.Parse(args)
	sc := workload.DefaultScale()
	if *small {
		sc = workload.TestScale()
	}
	c, err := workload.Compose(*bench, *seed, *refs, sc)
	if err != nil {
		fatalf("compose: %v", err)
	}
	fmt.Printf("%s: %s\n", *bench, c)
}

func load(path string) *trace.Trace {
	f, err := os.Open(path)
	if err != nil {
		fatalf("%v", err)
	}
	defer f.Close()
	tr, err := trace.Read(f)
	if err != nil {
		fatalf("reading %s: %v", path, err)
	}
	return tr
}

func info(args []string) {
	fs := flag.NewFlagSet("info", flag.ExitOnError)
	in := fs.String("in", "", "trace file (required)")
	fs.Parse(args)
	if *in == "" {
		fatalf("info: -in is required")
	}
	tr := load(*in)
	total := 0
	writes := 0
	for _, pc := range tr.PerCore {
		total += len(pc)
		for _, a := range pc {
			if a.Write {
				writes++
			}
		}
	}
	fmt.Printf("benchmark:  %s\ncores:      %d\nfootprint:  %d MB\nreferences: %d (%.1f%% writes)\n",
		tr.Name, tr.Cores, tr.Footprint>>20, total, 100*float64(writes)/float64(total))
}

func replay(args []string) {
	fs := flag.NewFlagSet("replay", flag.ExitOnError)
	in := fs.String("in", "", "trace file (required)")
	mode := fs.String("mode", "functional", "functional or timing")
	system := fs.String("system", "morphable", "non-secure | sc64 | morphable | emcc | mono | bipbip | insram | <any>+nollc")
	refs := fs.Int64("refs", 0, "references to replay (0 = one full pass)")
	fs.Parse(args)
	if *in == "" {
		fatalf("replay: -in is required")
	}
	tr := load(*in)
	gens, err := tr.Generators()
	if err != nil {
		fatalf("replay: %v", err)
	}
	n := *refs
	if n == 0 {
		for _, pc := range tr.PerCore {
			n += int64(len(pc))
		}
	}

	cfg := config.Default()
	if err := config.ApplySystem(&cfg, *system); err != nil {
		fatalf("replay: %v", err)
	}

	switch *mode {
	case "functional":
		s, err := fsim.New(&cfg, fsim.Options{
			Cores: tr.Cores, Refs: n, Generators: gens, DataBytes: tr.Footprint,
		})
		if err != nil {
			fatalf("replay: %v", err)
		}
		s.Run()
		fmt.Printf("# functional replay of %s (%d refs, %s)\n", tr.Name, n, cfg.SystemName())
		fmt.Print(s.Stats().Dump())
	case "timing":
		s, err := tsim.New(&cfg, tsim.Options{
			Cores: tr.Cores, Refs: n, Generators: gens, DataBytes: tr.Footprint,
		})
		if err != nil {
			fatalf("replay: %v", err)
		}
		res := s.Run()
		fmt.Printf("# timing replay of %s (%d refs, %s)\n", tr.Name, n, cfg.SystemName())
		fmt.Printf("simulated-time-ms  %.3f\nipc                %.3f\nl2-miss-latency-ns %.2f\n",
			res.SimulatedTime.Nanoseconds()/1e6, res.IPC, res.L2MissLatencyNS)
	default:
		fatalf("replay: unknown mode %q", *mode)
	}
}

func fatalf(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "tracer: "+format+"\n", args...)
	os.Exit(1)
}
