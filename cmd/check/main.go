// Command check runs the verification harness (internal/check): differential
// fsim-vs-tsim/secmem comparisons, metamorphic configuration properties,
// invariant-instrumented simulation runs and serial-vs-sharded engine parity
// runs. It prints one line per check and exits non-zero if any fail.
//
// Every unit — all four pillars — owns its simulators, stats and invariant
// recorders outright, so the units fan out across -parallel goroutines
// (default: GOMAXPROCS). Parallelism changes only the wall-clock time, never
// the report.
//
// Usage:
//
//	go run ./cmd/check [-quick] [-seed N] [-refs N] [-bench name] [-cores N] [-parallel N]
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"

	"repro/internal/check"
	"repro/internal/config"
	"repro/internal/prov"
)

func main() {
	opt := check.Options{}
	flag.Uint64Var(&opt.Seed, "seed", 0, "workload seed (0 = default)")
	flag.Int64Var(&opt.Refs, "refs", 0, "memory references per run (0 = default)")
	flag.StringVar(&opt.Benchmark, "bench", "", "synthetic benchmark to trace (empty = default)")
	flag.IntVar(&opt.Cores, "cores", 0, "simulated cores (0 = default)")
	flag.BoolVar(&opt.Quick, "quick", false, "halve the reference budget")
	flag.IntVar(&opt.Parallel, "parallel", runtime.GOMAXPROCS(0), "concurrent check units (1 = serial)")
	flag.Parse()

	cfg := config.Default()
	fmt.Printf("# %s\n", prov.Line(prov.Manifest(&cfg, map[string]string{
		"tool":     "check",
		"seed":     fmt.Sprint(opt.Seed),
		"refs":     fmt.Sprint(opt.Refs),
		"parallel": fmt.Sprint(opt.Parallel),
	})))
	results := check.Run(opt)
	for _, r := range results {
		fmt.Println(r)
	}
	failed := check.Failed(results)
	fmt.Printf("\n%d checks, %d failed\n", len(results), failed)
	if failed > 0 {
		os.Exit(1)
	}
}
