// Command check runs the verification harness (internal/check): differential
// fsim-vs-tsim/secmem comparisons, metamorphic configuration properties and
// invariant-instrumented simulation runs. It prints one line per check and
// exits non-zero if any fail.
//
// Usage:
//
//	go run ./cmd/check [-quick] [-seed N] [-refs N] [-bench name] [-cores N]
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/check"
)

func main() {
	opt := check.Options{}
	flag.Uint64Var(&opt.Seed, "seed", 0, "workload seed (0 = default)")
	flag.Int64Var(&opt.Refs, "refs", 0, "memory references per run (0 = default)")
	flag.StringVar(&opt.Benchmark, "bench", "", "synthetic benchmark to trace (empty = default)")
	flag.IntVar(&opt.Cores, "cores", 0, "simulated cores (0 = default)")
	flag.BoolVar(&opt.Quick, "quick", false, "halve the reference budget")
	flag.Parse()

	results := check.Run(opt)
	for _, r := range results {
		fmt.Println(r)
	}
	failed := check.Failed(results)
	fmt.Printf("\n%d checks, %d failed\n", len(results), failed)
	if failed > 0 {
		os.Exit(1)
	}
}
