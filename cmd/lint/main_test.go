package main

import (
	"strings"
	"testing"

	"repro/internal/analysis"
)

// TestCleanTree runs the full suite in-process over the real module and
// requires zero findings: the tree must stay lint-clean, and any new
// convention violation fails here before it fails in CI.
func TestCleanTree(t *testing.T) {
	root, err := findModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	res, err := analysis.Run(root, "./...")
	if err != nil {
		t.Fatalf("analysis.Run: %v", err)
	}
	if len(res.Findings) > 0 {
		var lines []string
		for _, f := range res.Findings {
			lines = append(lines, f.String())
		}
		t.Errorf("lint findings on clean tree:\n  %s", strings.Join(lines, "\n  "))
	}
	if len(res.Keys) == 0 {
		t.Error("no registered stats keys discovered; registry collection is broken")
	}
}

// TestFindModuleRoot checks the go.mod walk from a package subdirectory.
func TestFindModuleRoot(t *testing.T) {
	root, err := findModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasSuffix(root, "repo") && root == "" {
		t.Errorf("unexpected module root %q", root)
	}
	if _, err := findModuleRoot("/"); err == nil {
		t.Error("findModuleRoot(/) should fail outside any module")
	}
}
