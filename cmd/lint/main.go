// Command lint runs the project's static-analysis suite (internal/
// analysis) over the module: statskey (stats-key registry discipline),
// detlint (determinism of golden-compared output), invgate (inv.Failf
// behind inv.On()) and obsnil (nil-safe tracer call sites).
//
// Usage:
//
//	go run ./cmd/lint ./...
//	go run ./cmd/lint ./internal/... ./cmd/...
//
// Findings print one per line as "file:line: [pass] message" with paths
// relative to the module root, and any finding exits non-zero. Suppress
// a finding with `//lint:ignore <pass> <reason>` on the same line or the
// line above; mark an intentionally dynamic stats-key family with
// `//lint:dynamic-key`.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/analysis"
)

func main() {
	dir := flag.String("C", ".", "directory to start the go.mod search from")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(),
			"usage: lint [-C dir] [package patterns, default ./...]\npasses: %v\n", analysis.Passes())
		flag.PrintDefaults()
	}
	flag.Parse()

	root, err := findModuleRoot(*dir)
	if err != nil {
		fmt.Fprintln(os.Stderr, "lint:", err)
		os.Exit(2)
	}
	res, err := analysis.Run(root, flag.Args()...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "lint:", err)
		os.Exit(2)
	}
	for _, f := range res.Findings {
		fmt.Println(f)
	}
	if n := len(res.Findings); n > 0 {
		fmt.Fprintf(os.Stderr, "lint: %d finding(s)\n", n)
		os.Exit(1)
	}
}

// findModuleRoot walks up from dir to the nearest directory containing
// go.mod.
func findModuleRoot(dir string) (string, error) {
	dir, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod found above %s", dir)
		}
		dir = parent
	}
}
