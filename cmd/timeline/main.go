// Command timeline prints the secure-memory-access latency anatomies of
// Figs 5, 8, 10, 13 and 14: where each nanosecond goes under the baseline
// and under EMCC, for counter hits and misses, with and without XPT.
//
// Usage:
//
//	timeline            # all five timelines
//	timeline -fig fig10 # one scenario
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/figures"
)

func main() {
	fig := flag.String("fig", "", "one of fig5, fig8, fig10, fig13, fig14 (default: all)")
	flag.Parse()

	h := figures.NewHarness(true)
	ids := []string{"fig5", "fig8", "fig10", "fig13", "fig14"}
	if *fig != "" {
		ids = []string{*fig}
	}
	for _, id := range ids {
		t, ok := h.ByID(id)
		if !ok {
			fmt.Fprintf(os.Stderr, "timeline: unknown figure %q\n", id)
			os.Exit(1)
		}
		t.Fprint(os.Stdout)
	}
}
