package emccsim

import (
	"bytes"
	"errors"
	"testing"
)

func TestPublicAPITimingRun(t *testing.T) {
	cfg := DefaultConfig()
	cfg.EMCC = true
	s, err := NewTiming(&cfg, TimingOptions{
		Benchmark: "canneal", Refs: 50_000, Warmup: 100_000, Scale: TestScale(),
	})
	if err != nil {
		t.Fatal(err)
	}
	res := s.Run()
	if res.SimulatedTime <= 0 || res.Instructions <= 0 {
		t.Fatalf("degenerate result: %+v", res)
	}
}

func TestPublicAPIFunctionalRun(t *testing.T) {
	cfg := DefaultConfig()
	s, err := NewFunctional(&cfg, FunctionalOptions{
		Benchmark: "pageRank", Refs: 100_000, Scale: TestScale(),
	})
	if err != nil {
		t.Fatal(err)
	}
	s.Run()
	if s.Stats() == nil {
		t.Fatal("no stats")
	}
}

func TestPublicAPISecureMemory(t *testing.T) {
	m, err := NewSecureMemory(1<<20, CtrMorphable, []byte("sixteen byte key"))
	if err != nil {
		t.Fatal(err)
	}
	plain := bytes.Repeat([]byte{0x42}, 64)
	if _, err := m.Write(0, plain); err != nil {
		t.Fatal(err)
	}
	got, err := m.Read(0)
	if err != nil || !bytes.Equal(got, plain) {
		t.Fatalf("round trip failed: %v", err)
	}
	m.TamperData(0)
	if _, err := m.Read(0); !errors.Is(err, ErrTampered) {
		t.Fatalf("tamper not detected: %v", err)
	}
}

func TestPublicAPILists(t *testing.T) {
	if len(Benchmarks()) != 26 || len(PrimaryBenchmarks()) != 11 {
		t.Fatal("benchmark lists wrong")
	}
	if len(FigureIDs()) < 20 {
		t.Fatal("figure ids missing")
	}
}

func TestPublicAPIFiguresAnalytic(t *testing.T) {
	h := NewFigures(true)
	tab, ok := h.ByID("table1")
	if !ok || len(tab.Rows) == 0 {
		t.Fatal("table1 not reproducible through the facade")
	}
}
