// Package emccsim reproduces "Eager Memory Cryptography in Caches" (Wang,
// Kotra, Jian — MICRO 2022): a secure-memory architecture study in which
// counter-mode decryption and verification move from the memory controller
// into the L2 caches.
//
// The package is a facade over the internal simulators:
//
//   - NewSecureMemory: the functional secure-memory model — real AES-128
//     counter-mode encryption, Carter-Wegman MACs and an integrity tree
//     over a simulated DRAM image. Tampering and replay are detected.
//   - NewFunctional: the Pintool-style counting simulator (cache hit/miss
//     and traffic statistics; Figs 2, 6, 7, 11, 12, 23, 24).
//   - NewTiming: the gem5-style timing simulator (4 OoO cores, mesh NoC,
//     DDR4, AES pools; Figs 15-22).
//   - NewFigures: the harness that regenerates every table and figure.
//
// Quickstart:
//
//	cfg := emccsim.DefaultConfig()
//	cfg.EMCC = true
//	s, err := emccsim.NewTiming(&cfg, emccsim.TimingOptions{
//		Benchmark: "canneal", Refs: 500_000, Warmup: 2_000_000,
//	})
//	if err != nil { ... }
//	res := s.Run()
//	fmt.Println(res.IPC, res.L2MissLatencyNS)
package emccsim

import (
	"repro/internal/config"
	"repro/internal/figures"
	"repro/internal/fsim"
	"repro/internal/secmem"
	"repro/internal/tsim"
	"repro/internal/workload"
)

// Config is the simulated-system configuration (Table I of the paper plus
// the EMCC-specific knobs).
type Config = config.Config

// CounterDesign selects the counter organisation.
type CounterDesign = config.CounterDesign

// Counter organisations.
const (
	// CtrNone disables memory encryption/verification (non-secure).
	CtrNone = config.CtrNone
	// CtrMono uses eight 56-bit counters per counter block.
	CtrMono = config.CtrMono
	// CtrSC64 uses SC-64 split counters (64 x 7-bit minors).
	CtrSC64 = config.CtrSC64
	// CtrMorphable uses Morphable Counters (128 minors, morphing format).
	CtrMorphable = config.CtrMorphable
)

// DefaultConfig returns the paper's Table I configuration with Morphable
// Counters cached in LLC (the primary baseline). Set cfg.EMCC = true to
// apply the paper's contribution on top.
func DefaultConfig() Config { return config.Default() }

// FunctionalSim is the Pintool-style counting simulator.
type FunctionalSim = fsim.Sim

// FunctionalOptions selects workload and run length for a functional run.
type FunctionalOptions = fsim.Options

// NewFunctional builds a functional (counting) simulation.
func NewFunctional(cfg *Config, opt FunctionalOptions) (*FunctionalSim, error) {
	return fsim.New(cfg, opt)
}

// TimingSim is the gem5-style timing simulator.
type TimingSim = tsim.Sim

// TimingOptions selects workload and run length for a timing run.
type TimingOptions = tsim.Options

// TimingResult summarises a timing run.
type TimingResult = tsim.Result

// NewTiming builds a timing simulation.
func NewTiming(cfg *Config, opt TimingOptions) (*TimingSim, error) {
	return tsim.New(cfg, opt)
}

// SecureMemory is the functional secure-memory model (encrypt/verify a
// simulated DRAM image; detects tampering and replay).
type SecureMemory = secmem.Memory

// ErrTampered is returned by SecureMemory reads that fail verification.
var ErrTampered = secmem.ErrTampered

// NewSecureMemory builds a functional secure memory over dataBytes of
// protected space with the given counter design and 16-byte master key.
func NewSecureMemory(dataBytes int64, design CounterDesign, key []byte) (*SecureMemory, error) {
	return secmem.New(dataBytes, design, key)
}

// Figures is the experiment harness regenerating the paper's tables and
// figures.
type Figures = figures.Harness

// FigureTable is one regenerated figure/table.
type FigureTable = figures.Table

// NewFigures builds a figure harness; quick shrinks run lengths.
func NewFigures(quick bool) *Figures { return figures.NewHarness(quick) }

// FigureIDs lists every reproducible figure identifier in paper order.
func FigureIDs() []string { return figures.IDs() }

// Benchmarks lists every synthetic benchmark (the 11 large/irregular
// workloads of Figs 2-23 first, then the Fig 24 SPEC/PARSEC set).
func Benchmarks() []string { return workload.AllNames() }

// PrimaryBenchmarks lists the 11 large/irregular workloads.
func PrimaryBenchmarks() []string { return workload.PrimaryNames() }

// WorkloadScale sizes the synthetic workloads.
type WorkloadScale = workload.Scale

// DefaultScale is the figure-harness workload scale.
func DefaultScale() WorkloadScale { return workload.DefaultScale() }

// TestScale is a miniature scale for tests and examples.
func TestScale() WorkloadScale { return workload.TestScale() }
